// Command floodsim runs one flooding experiment over a MANET and prints
// the flooding time together with every bound the paper predicts for the
// chosen parameters.
//
// Usage:
//
//	floodsim [-n 4000] [-l 0] [-r 5] [-v 0.3] [-seed 1]
//	         [-model mrwp|rwp|walk|direction] [-source center|corner|random]
//	         [-max-steps 100000] [-chaining] [-series] [-timeout 1m]
//	         [-tiles 0] [-workers 0] [-trace run.mft]
//
// -l 0 (default) uses the paper's standard L = sqrt(n). -tiles K runs
// the tiled world (K x K tiles, bit-identical results, worthwhile from
// ~100k agents — see the 1M-agent quickstart in README.md). -trace
// records the run to a columnar trace file replayable with cmd/traceql
// (see README.md, "Recording and replaying runs").
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"

	manhattan "manhattanflood"
	"manhattanflood/internal/render"
)

func main() {
	n := flag.Int("n", 4000, "number of agents")
	l := flag.Float64("l", 0, "square side (0 = sqrt(n))")
	r := flag.Float64("r", 5, "transmission radius")
	v := flag.Float64("v", 0.3, "agent speed per step")
	seed := flag.Uint64("seed", 1, "random seed")
	model := flag.String("model", "mrwp", "mobility model: mrwp, rwp, walk, direction")
	source := flag.String("source", "center", "source placement: center, corner, random")
	maxSteps := flag.Int("max-steps", 100000, "step budget")
	chaining := flag.Bool("chaining", false, "within-step epidemic relaying (ablation)")
	series := flag.Bool("series", false, "print the informed-count time series")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none); on expiry the run stops like an interrupt")
	tiles := flag.Int("tiles", 0, "tiles per side for the tiled world (0 = flat; results are bit-identical)")
	workers := flag.Int("workers", 0, "worker goroutines for stepping and tiled passes (0 = sequential)")
	tracePath := flag.String("trace", "", "record the run to this columnar trace file (analyze with traceql)")
	flag.Parse()

	side := *l
	if side == 0 {
		side = math.Sqrt(float64(*n))
	}
	cfg := manhattan.Config{N: *n, L: side, R: *r, V: *v, Seed: *seed,
		Tiles: *tiles, Workers: *workers}
	switch *model {
	case "mrwp":
		cfg.Model = manhattan.MRWP
	case "rwp":
		cfg.Model = manhattan.RWP
	case "walk":
		cfg.Model = manhattan.RandomWalk
	case "direction":
		cfg.Model = manhattan.RandomDirection
	default:
		fmt.Fprintf(os.Stderr, "floodsim: unknown model %q\n", *model)
		os.Exit(2)
	}
	var src manhattan.Source
	switch *source {
	case "center":
		src = manhattan.SourceCenter
	case "corner":
		src = manhattan.SourceCorner
	case "random":
		src = manhattan.SourceRandom
	default:
		fmt.Fprintf(os.Stderr, "floodsim: unknown source %q\n", *source)
		os.Exit(2)
	}

	sim, err := manhattan.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "floodsim:", err)
		os.Exit(1)
	}
	zones := sim.Zones()
	fmt.Printf("world: n=%d L=%.4g R=%.4g v=%.4g model=%s seed=%d\n",
		*n, side, *r, *v, cfg.Model, *seed)
	fmt.Printf("partition: %dx%d cells (side %.4g), %d central / %d suburb, S=%.4g\n",
		zones.CellsPerSide, zones.CellsPerSide, zones.CellSide,
		zones.CentralCells, zones.SuburbCells, zones.SuburbDiameter)

	if b, err := manhattan.PaperBounds(cfg); err == nil {
		fmt.Printf("paper bounds: 18L/R=%.4g  T3-upper=%.4g  suburb-empty=%v  speed-ok=%v\n",
			b.CentralZoneTime, b.UpperBound, b.SuburbEmpty, b.SpeedOK)
		if b.LowerBoundApplies {
			fmt.Printf("Theorem 18 regime: lower bound Omega(L/(v n^(1/3))) = %.4g\n", b.LowerBound)
		}
	}

	// finishTrace detaches the recorder and flushes the trace file; called
	// on every post-run path (os.Exit skips defers), so even an
	// interrupted run leaves a committed, replayable prefix on disk.
	finishTrace := func() {}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "floodsim:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		rec, err := manhattan.NewRecorder(bw, sim, manhattan.RecordOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "floodsim:", err)
			os.Exit(1)
		}
		sim.Attach(rec)
		finishTrace = func() {
			sim.Detach()
			err := bw.Flush()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "floodsim: flushing trace:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d frames -> %s\n", rec.Frames(), *tracePath)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := sim.Flood(manhattan.FloodOptions{
		Ctx:          ctx,
		Source:       src,
		MaxSteps:     *maxSteps,
		TrackZones:   true,
		Chaining:     *chaining,
		RecordSeries: *series,
	})
	finishTrace()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "floodsim: -timeout %s exceeded at step %d: %d/%d informed\n",
				*timeout, res.Time, res.Informed, *n)
		} else if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "floodsim: interrupted at step %d: %d/%d informed\n",
				res.Time, res.Informed, *n)
		} else {
			fmt.Fprintln(os.Stderr, "floodsim:", err)
		}
		os.Exit(1)
	}
	if !res.Completed {
		fmt.Printf("NOT COMPLETED after %d steps: %d/%d informed\n", res.Time, res.Informed, *n)
		os.Exit(1)
	}
	fmt.Printf("flooding time: %d steps (source agent %d)\n", res.Time, res.Source)
	if res.CZTime >= 0 {
		fmt.Printf("central zone informed at: %d; suburb lag: %d\n", res.CZTime, res.SuburbLag)
	}
	if *series {
		floats := make([]float64, len(res.Series))
		for i, c := range res.Series {
			floats[i] = float64(c)
		}
		fmt.Printf("informed-count curve: %s\n", render.Sparkline(floats, 60))
		fmt.Println("t\tinformed")
		for t, c := range res.Series {
			fmt.Printf("%d\t%d\n", t, c)
		}
	}
}
