// Command docscheck is the repository's documentation gate, run by `make
// ci`. It enforces two invariants that keep the codebase legible as it
// grows:
//
//  1. Every Go package in the repository — internal/, cmd/, examples/ and
//     the root library package — carries a package (or command) doc
//     comment on at least one of its files.
//
//  2. Every relative link and bare file reference in the top-level
//     markdown docs (README.md, ARCHITECTURE.md, and any file passed as
//     an argument) resolves to an existing file, so the docs cannot
//     silently rot as files move.
//
// Usage:
//
//	docscheck [-root DIR] [extra.md ...]
//
// Exits non-zero listing every violation. It has no dependencies beyond
// the standard library, so the gate costs nothing to run anywhere the
// repo builds.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	problems = append(problems, checkPackageDocs(*root)...)

	docs := []string{"README.md", "ARCHITECTURE.md"}
	docs = append(docs, flag.Args()...)
	for _, doc := range docs {
		problems = append(problems, checkDocLinks(*root, doc)...)
	}

	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok (package docs present, doc links resolve)")
}

// checkPackageDocs walks every directory under root containing Go files
// and reports those whose package has no doc comment on any file.
func checkPackageDocs(root string) []string {
	byDir := map[string]bool{} // dir -> has a package doc comment
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		seen[dir] = true
		if byDir[dir] {
			return nil // already satisfied by another file
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			byDir[dir] = true
		}
		return nil
	})
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	for dir := range seen {
		if !byDir[dir] {
			rel, rerr := filepath.Rel(root, dir)
			if rerr != nil {
				rel = dir
			}
			problems = append(problems, fmt.Sprintf("package in %s has no package doc comment", rel))
		}
	}
	return problems
}

// linkRe matches markdown links [text](target) (images included).
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// fileRefRe matches bare backticked repo file references like
// `internal/sim/world.go` or `BENCH_3.json` — paths with an extension we
// track, no spaces.
var fileRefRe = regexp.MustCompile("`([A-Za-z0-9_./-]+\\.(?:go|md|json|mk|mod))`")

// checkDocLinks verifies that every relative link and backticked file
// reference in the markdown file resolves under root. External targets
// (scheme://, mailto:, #fragment) are skipped.
func checkDocLinks(root, doc string) []string {
	path := filepath.Join(root, doc)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return []string{fmt.Sprintf("%s is missing", doc)}
		}
		return []string{err.Error()}
	}
	var problems []string
	check := func(target string) {
		if target == "" ||
			strings.Contains(target, "://") ||
			strings.HasPrefix(target, "mailto:") ||
			strings.HasPrefix(target, "#") {
			return
		}
		target = strings.SplitN(target, "#", 2)[0] // strip fragment
		if _, err := os.Stat(filepath.Join(root, target)); err != nil {
			problems = append(problems, fmt.Sprintf("%s references %q, which does not exist", doc, target))
		}
	}
	for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
		check(m[1])
	}
	for _, m := range fileRefRe.FindAllStringSubmatch(string(data), -1) {
		check(m[1])
	}
	return problems
}
