package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"
)

// TestSIGINTThenResumeByteIdentical is the end-to-end crash-safety check:
// build the real binary, interrupt a checkpointed sweep with SIGINT
// mid-run, resume it, and require the resumed TSV to be byte-identical to
// an uninterrupted run. The assertion holds regardless of where the
// signal lands — if the sweep finishes before the interrupt, the resume
// simply replays a complete journal and reproduces the same rows.
func TestSIGINTThenResumeByteIdentical(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	if testing.Short() {
		t.Skip("builds and runs the sweep binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Big enough (~2s at two workers) that SIGINT reliably lands mid-run,
	// small enough to stay test-suite friendly.
	args := []string{"-param", "r", "-values", "2,2.5,3", "-n", "30000",
		"-trials", "8", "-max-steps", "60000", "-seed", "3", "-workers", "2"}
	ckpt := filepath.Join(dir, "sweep.ckpt")

	run := func(extra ...string) ([]byte, []byte, error) {
		cmd := exec.Command(bin, append(append([]string{}, args...), extra...)...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		return stdout.Bytes(), stderr.Bytes(), err
	}

	want, _, err := run()
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Interrupted run: SIGINT shortly after start.
	cmd := exec.Command(bin, append(append([]string{}, args...), "-checkpoint", ckpt)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	time.Sleep(250 * time.Millisecond)
	_ = cmd.Process.Signal(syscall.SIGINT)
	err = cmd.Wait()
	interrupted := err != nil
	if interrupted {
		// A drained interrupt must exit nonzero, leave a journal behind,
		// and tell the user how to continue.
		if _, statErr := os.Stat(ckpt); statErr != nil {
			t.Fatalf("interrupted run left no checkpoint: %v\nstderr: %s", statErr, stderr.Bytes())
		}
		if !bytes.Contains(stderr.Bytes(), []byte("-resume")) {
			t.Errorf("interrupted run's stderr carries no -resume hint:\n%s", stderr.Bytes())
		}
	} else if !bytes.Equal(stdout.Bytes(), want) {
		// Signal landed after completion: the run must already match.
		t.Fatalf("completed run differs from baseline\ngot: %s\nwant: %s", stdout.Bytes(), want)
	}

	got, resumeErr, err := run("-checkpoint", ckpt, "-resume")
	if err != nil {
		t.Fatalf("resume: %v\nstderr: %s", err, resumeErr)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed TSV differs from uninterrupted run\ngot: %s\nwant: %s", got, want)
	}
}
