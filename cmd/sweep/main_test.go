package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"
)

// TestSIGINTThenResumeByteIdentical is the end-to-end crash-safety check:
// build the real binary, interrupt a checkpointed sweep with SIGINT
// mid-run, resume it, and require the resumed TSV to be byte-identical to
// an uninterrupted run. The assertion holds regardless of where the
// signal lands — if the sweep finishes before the interrupt, the resume
// simply replays a complete journal and reproduces the same rows.
func TestSIGINTThenResumeByteIdentical(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	if testing.Short() {
		t.Skip("builds and runs the sweep binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Big enough (~2s at two workers) that SIGINT reliably lands mid-run,
	// small enough to stay test-suite friendly.
	args := []string{"-param", "r", "-values", "2,2.5,3", "-n", "30000",
		"-trials", "8", "-max-steps", "60000", "-seed", "3", "-workers", "2"}
	ckpt := filepath.Join(dir, "sweep.ckpt")

	run := func(extra ...string) ([]byte, []byte, error) {
		cmd := exec.Command(bin, append(append([]string{}, args...), extra...)...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		return stdout.Bytes(), stderr.Bytes(), err
	}

	want, _, err := run()
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}

	// Interrupted run: SIGINT shortly after start.
	cmd := exec.Command(bin, append(append([]string{}, args...), "-checkpoint", ckpt)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	time.Sleep(250 * time.Millisecond)
	_ = cmd.Process.Signal(syscall.SIGINT)
	err = cmd.Wait()
	interrupted := err != nil
	if interrupted {
		// A drained interrupt must exit nonzero, leave a journal behind,
		// and tell the user how to continue.
		if _, statErr := os.Stat(ckpt); statErr != nil {
			t.Fatalf("interrupted run left no checkpoint: %v\nstderr: %s", statErr, stderr.Bytes())
		}
		if !bytes.Contains(stderr.Bytes(), []byte("-resume")) {
			t.Errorf("interrupted run's stderr carries no -resume hint:\n%s", stderr.Bytes())
		}
	} else if !bytes.Equal(stdout.Bytes(), want) {
		// Signal landed after completion: the run must already match.
		t.Fatalf("completed run differs from baseline\ngot: %s\nwant: %s", stdout.Bytes(), want)
	}

	got, resumeErr, err := run("-checkpoint", ckpt, "-resume")
	if err != nil {
		t.Fatalf("resume: %v\nstderr: %s", err, resumeErr)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed TSV differs from uninterrupted run\ngot: %s\nwant: %s", got, want)
	}
}

// buildSweep compiles the real binary for CLI-behavior tests.
func buildSweep(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and runs the sweep binary")
	}
	bin := filepath.Join(t.TempDir(), "sweep")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runSweep executes the binary and returns stdout, stderr, and the exit
// code (0 on success, -1 if the process did not run at all).
func runSweep(t *testing.T, bin string, args ...string) ([]byte, []byte, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.Bytes(), stderr.Bytes(), code
}

// TestResumeFlagValidation pins the two usage-error paths to exit code 2
// with actionable messages: -resume without -checkpoint, and -resume
// against a journal recorded under different sweep flags.
func TestResumeFlagValidation(t *testing.T) {
	bin := buildSweep(t)
	fast := []string{"-param", "r", "-values", "3,5", "-n", "400",
		"-trials", "2", "-max-steps", "5000", "-seed", "7"}

	_, stderr, code := runSweep(t, bin, append(append([]string{}, fast...), "-resume")...)
	if code != 2 || !bytes.Contains(stderr, []byte("-resume requires -checkpoint")) {
		t.Fatalf("resume without checkpoint: code=%d stderr=%s", code, stderr)
	}

	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, stderr, code := runSweep(t, bin, append(append([]string{}, fast...), "-checkpoint", ckpt)...); code != 0 {
		t.Fatalf("seed run failed: code=%d stderr=%s", code, stderr)
	}

	// Same journal, different flags: the fingerprints cannot match.
	mismatched := []string{"-param", "r", "-values", "3,5", "-n", "400",
		"-trials", "2", "-max-steps", "5000", "-seed", "8",
		"-checkpoint", ckpt, "-resume"}
	_, stderr, code = runSweep(t, bin, mismatched...)
	if code != 2 {
		t.Fatalf("mismatched resume: code=%d, want 2\nstderr: %s", code, stderr)
	}
	if !bytes.Contains(stderr, []byte("different sweep")) || !bytes.Contains(stderr, []byte("original flags")) {
		t.Fatalf("mismatched resume stderr not actionable:\n%s", stderr)
	}

	// The same flags still resume cleanly — the journal was not damaged
	// by the refusal.
	if _, stderr, code := runSweep(t, bin, append(append([]string{}, fast...), "-checkpoint", ckpt, "-resume")...); code != 0 {
		t.Fatalf("matching resume failed: code=%d stderr=%s", code, stderr)
	}
}

// TestTimeoutDrainsAndResumes: a sweep that blows its -timeout drains
// like an interrupt — partial results, nonzero exit, a -resume hint —
// and the resumed run is byte-identical to an uninterrupted one.
func TestTimeoutDrainsAndResumes(t *testing.T) {
	bin := buildSweep(t)
	args := []string{"-param", "r", "-values", "2,2.5,3", "-n", "30000",
		"-trials", "8", "-max-steps", "60000", "-seed", "5", "-workers", "2"}
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")

	want, stderr, code := runSweep(t, bin, args...)
	if code != 0 {
		t.Fatalf("baseline: code=%d stderr=%s", code, stderr)
	}

	_, stderr, code = runSweep(t, bin, append(append([]string{}, args...),
		"-checkpoint", ckpt, "-timeout", "300ms")...)
	if code == 0 {
		// The whole sweep fit inside the budget on this machine; nothing
		// left to assert about draining.
		t.Skip("sweep completed within the timeout budget")
	}
	if code != 1 {
		t.Fatalf("timed-out run: code=%d, want 1\nstderr: %s", code, stderr)
	}
	if !bytes.Contains(stderr, []byte("-timeout")) || !bytes.Contains(stderr, []byte("-resume")) {
		t.Fatalf("timed-out run's stderr lacks the timeout/resume hints:\n%s", stderr)
	}

	got, stderr, code := runSweep(t, bin, append(append([]string{}, args...),
		"-checkpoint", ckpt, "-resume")...)
	if code != 0 {
		t.Fatalf("resume: code=%d stderr=%s", code, stderr)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed TSV differs from uninterrupted run\ngot: %s\nwant: %s", got, want)
	}
}
