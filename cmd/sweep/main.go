// Command sweep runs flooding-time parameter sweeps and emits TSV rows —
// the raw series behind the paper's Theorem 3 shape, ready for gnuplot or
// spreadsheet import.
//
// Usage:
//
//	sweep -param r -values 4,5,6,8,12 [-n 4000] [-v 0.3] [-r 5]
//	      [-trials 5] [-seed 1] [-max-steps 100000] [-source center]
//	      [-workers 0] [-checkpoint sweep.ckpt] [-resume] [-timeout 10m]
//
// -param selects which axis varies (r, v, or n); the corresponding fixed
// flag is ignored. Output columns: value, mean T, ci95, CZ time, suburb
// lag, L/R, second-phase term, completed/trials.
//
// The sweep is crash-safe. SIGINT/SIGTERM — or an expired -timeout —
// drains gracefully: in-flight trials finish, the checkpoint journal (if
// -checkpoint is set) is flushed, completed points are printed, and the
// process exits nonzero with a hint to rerun with -resume. A resumed
// sweep replays recorded trials from the journal and produces
// byte-identical TSV to an uninterrupted run. -resume refuses (exit 2) a
// journal recorded under different sweep flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"manhattanflood/internal/checkpoint"
	"manhattanflood/internal/experiments"
)

func main() {
	param := flag.String("param", "r", "swept parameter: r, v, or n")
	values := flag.String("values", "", "comma-separated values for the swept parameter")
	n := flag.Int("n", 4000, "agents (fixed unless -param n)")
	r := flag.Float64("r", 5, "radius (fixed unless -param r)")
	v := flag.Float64("v", 0.3, "speed (fixed unless -param v)")
	trials := flag.Int("trials", 5, "seeds per point")
	seed := flag.Uint64("seed", 1, "base seed")
	maxSteps := flag.Int("max-steps", 100000, "step budget per run")
	source := flag.String("source", "center", "source placement: center, corner, random")
	workers := flag.Int("workers", 0, "trial worker goroutines (0 = GOMAXPROCS)")
	ckptPath := flag.String("checkpoint", "", "checkpoint journal path (enables crash-safe resume)")
	resume := flag.Bool("resume", false, "replay completed trials from the -checkpoint journal")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = none); on expiry the sweep drains like an interrupt")
	flag.Parse()

	if *values == "" {
		fmt.Fprintln(os.Stderr, "sweep: -values is required")
		os.Exit(2)
	}
	var vals []float64
	for _, tok := range strings.Split(*values, ",") {
		val, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad value %q: %v\n", tok, err)
			os.Exit(2)
		}
		vals = append(vals, val)
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "sweep: -resume requires -checkpoint")
		os.Exit(2)
	}

	spec := experiments.SweepSpec{
		Param: *param, Values: vals,
		N: *n, R: *r, V: *v,
		Trials: *trials, MaxSteps: *maxSteps,
		Seed: *seed, Source: *source,
	}

	var journal *checkpoint.Journal
	if *ckptPath != "" {
		if !*resume {
			// A fresh (non-resume) run must not replay a stale journal left
			// behind by an earlier sweep at the same path.
			if err := os.Remove(*ckptPath); err != nil && !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, "sweep: clearing old checkpoint:", err)
				os.Exit(1)
			}
		}
		var err error
		journal, err = checkpoint.Open(*ckptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		if *resume {
			// A journal recorded for different flags would silently poison
			// the resumed sweep; refuse it with the mismatch spelled out.
			if err := spec.CheckJournal(journal); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %s was recorded for a different sweep: %v\n", *ckptPath, err)
				fmt.Fprintln(os.Stderr, "sweep: rerun with the original flags, or delete the journal to start over")
				os.Exit(2)
			}
			if journal.Len() > 0 {
				fmt.Fprintf(os.Stderr, "sweep: resuming: %d trials already recorded in %s\n",
					journal.Len(), *ckptPath)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{Ctx: ctx, Journal: journal, Workers: *workers}
	res, runErr := experiments.RunSweep(cfg, spec)

	// Whatever happened, persist the journal first: the recorded trials
	// are what makes -resume cheap.
	if journal != nil {
		if err := journal.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep: flushing checkpoint:", err)
		}
	}

	fmt.Println("value\tmeanT\tci95\tczTime\tsuburbLag\tL_over_R\tsecondTerm\tcompleted")
	failed := 0
	for _, p := range res.Points {
		if p.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "sweep: point value=%g failed: %v\n", p.Value, p.Err)
			continue
		}
		fmt.Printf("%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%d/%d\n",
			p.Value, p.MeanT, p.CI95, p.CZTime, p.SuburbLag, p.LOverR,
			p.SecondTerm, p.Completed, p.Trials)
	}

	switch {
	case runErr != nil && (errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded)):
		reason := "interrupted"
		if errors.Is(runErr, context.DeadlineExceeded) {
			reason = fmt.Sprintf("-timeout %s exceeded", *timeout)
		}
		fmt.Fprintf(os.Stderr, "sweep: %s: %d of %d points completed\n",
			reason, len(res.Points), len(vals))
		if journal != nil {
			fmt.Fprintf(os.Stderr, "sweep: completed trials are checkpointed in %s; rerun with -resume to continue\n",
				*ckptPath)
		} else {
			fmt.Fprintln(os.Stderr, "sweep: rerun with -checkpoint to make interruptions resumable")
		}
		os.Exit(1)
	case runErr != nil:
		fmt.Fprintln(os.Stderr, "sweep:", runErr)
		os.Exit(1)
	case failed > 0:
		fmt.Fprintf(os.Stderr, "sweep: %d of %d points failed\n", failed, len(vals))
		os.Exit(1)
	}
}
