// Command sweep runs flooding-time parameter sweeps and emits TSV rows —
// the raw series behind the paper's Theorem 3 shape, ready for gnuplot or
// spreadsheet import.
//
// Usage:
//
//	sweep -param r -values 4,5,6,8,12 [-n 4000] [-v 0.3] [-r 5]
//	      [-trials 5] [-seed 1] [-max-steps 100000] [-source center]
//
// -param selects which axis varies (r, v, or n); the corresponding fixed
// flag is ignored. Output columns: value, mean T, ci95, CZ time, suburb
// lag, L/R, second-phase term, completed/trials.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	manhattan "manhattanflood"
	"manhattanflood/internal/stats"
)

func main() {
	param := flag.String("param", "r", "swept parameter: r, v, or n")
	values := flag.String("values", "", "comma-separated values for the swept parameter")
	n := flag.Int("n", 4000, "agents (fixed unless -param n)")
	r := flag.Float64("r", 5, "radius (fixed unless -param r)")
	v := flag.Float64("v", 0.3, "speed (fixed unless -param v)")
	trials := flag.Int("trials", 5, "seeds per point")
	seed := flag.Uint64("seed", 1, "base seed")
	maxSteps := flag.Int("max-steps", 100000, "step budget per run")
	source := flag.String("source", "center", "source placement: center, corner, random")
	flag.Parse()

	if *values == "" {
		fmt.Fprintln(os.Stderr, "sweep: -values is required")
		os.Exit(2)
	}
	var src manhattan.Source
	switch *source {
	case "center":
		src = manhattan.SourceCenter
	case "corner":
		src = manhattan.SourceCorner
	case "random":
		src = manhattan.SourceRandom
	default:
		fmt.Fprintf(os.Stderr, "sweep: unknown source %q\n", *source)
		os.Exit(2)
	}

	fmt.Println("value\tmeanT\tci95\tczTime\tsuburbLag\tL_over_R\tsecondTerm\tcompleted")
	for _, tok := range strings.Split(*values, ",") {
		val, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad value %q: %v\n", tok, err)
			os.Exit(2)
		}
		cn, cr, cv := *n, *r, *v
		switch *param {
		case "r":
			cr = val
		case "v":
			cv = val
		case "n":
			cn = int(val)
		default:
			fmt.Fprintf(os.Stderr, "sweep: unknown param %q\n", *param)
			os.Exit(2)
		}
		l := math.Sqrt(float64(cn))
		var ts, czs, lags []float64
		completed := 0
		for trial := 0; trial < *trials; trial++ {
			cfg := manhattan.Config{N: cn, L: l, R: cr, V: cv,
				Seed: *seed + uint64(trial)*0x9e3779b97f4a7c15}
			sim, err := manhattan.New(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			res, err := sim.Flood(manhattan.FloodOptions{
				Source: src, MaxSteps: *maxSteps, TrackZones: true,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				os.Exit(1)
			}
			if !res.Completed {
				continue
			}
			completed++
			ts = append(ts, float64(res.Time))
			if res.CZTime >= 0 {
				czs = append(czs, float64(res.CZTime))
			}
			if res.SuburbLag >= 0 {
				lags = append(lags, float64(res.SuburbLag))
			}
		}
		var sT, sCZ, sLag stats.Summary
		if len(ts) > 0 {
			sT, _ = stats.Summarize(ts)
		}
		if len(czs) > 0 {
			sCZ, _ = stats.Summarize(czs)
		}
		if len(lags) > 0 {
			sLag, _ = stats.Summarize(lags)
		}
		secondTerm := l * l * l * math.Log(float64(cn)) / (cr * cr * float64(cn) * cv)
		fmt.Printf("%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\t%d/%d\n",
			val, sT.Mean, sT.CI95, sCZ.Mean, sLag.Mean, l/cr, secondTerm, completed, *trials)
	}
}
