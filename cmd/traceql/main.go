// Command traceql analyzes recorded run traces offline: the E-series
// statistics that previously required re-simulating a world are computed
// straight from a trace file, so one recorded run can be analyzed many
// times (record once, analyze many) and a tier-2 failure can be dissected
// after the fact on any machine.
//
// Usage:
//
//	traceql [-mode stats|series|dump] [-step N] [-tsv] trace.mft
//
// Modes:
//
//	stats   one-line-per-metric summary: header provenance, frame range,
//	        flooding time, informed-count milestones (50%/90%/99%/100%),
//	        newly-informed peak, displacement statistics (default)
//	series  per-step table: step, informed count, newly informed,
//	        mean step displacement
//	dump    the full agent state at -step N: id, x, y, informed
//
// -tsv switches the table output from aligned columns to tab-separated
// values for downstream tooling.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	manhattan "manhattanflood"
	"manhattanflood/internal/render"
)

func main() {
	mode := flag.String("mode", "stats", "stats, series or dump")
	step := flag.Int("step", -1, "step to dump (dump mode; -1 = last)")
	tsv := flag.Bool("tsv", false, "emit TSV instead of aligned columns")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceql [-mode stats|series|dump] [-step N] [-tsv] trace.mft")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *mode, *step, *tsv); err != nil {
		fmt.Fprintln(os.Stderr, "traceql:", err)
		os.Exit(1)
	}
}

func run(path, mode string, step int, tsv bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := manhattan.OpenReplay(f)
	if err != nil {
		return err
	}
	switch mode {
	case "stats":
		return stats(rp, tsv)
	case "series":
		return series(rp, tsv)
	case "dump":
		return dump(rp, step, tsv)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

func emit(t *render.Table, tsv bool) error {
	if tsv {
		return t.WriteTSV(os.Stdout)
	}
	return t.Render(os.Stdout)
}

// stepStats is the per-frame aggregate the analysis passes share.
type stepStats struct {
	step     int
	informed int
	newly    int
	meanDisp float64 // mean per-agent displacement from the previous frame
}

// scan replays the whole trace once, computing the per-step aggregates.
func scan(rp *manhattan.Replay) ([]stepStats, error) {
	var out []stepStats
	var prevX, prevY []float64
	for {
		if err := rp.Next(); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		v := rp.View()
		st := stepStats{step: v.Step, informed: -1}
		if v.Informed != nil {
			st.informed = 0
			for _, inf := range v.Informed {
				if inf {
					st.informed++
				}
			}
			st.newly = len(v.NewlyInformed)
		}
		if prevX != nil && len(out) > 0 && out[len(out)-1].step+1 == v.Step {
			var sum float64
			for i := range v.X {
				dx := v.X[i] - prevX[i]
				dy := v.Y[i] - prevY[i]
				sum += math.Hypot(dx, dy)
			}
			st.meanDisp = sum / float64(len(v.X))
		}
		prevX = append(prevX[:0], v.X...)
		prevY = append(prevY[:0], v.Y...)
		out = append(out, st)
	}
}

func stats(rp *manhattan.Replay, tsv bool) error {
	info := rp.Info()
	ss, err := scan(rp)
	if err != nil {
		return err
	}
	t := render.NewTable("trace statistics", "metric", "value")
	t.AddRow("model", info.Model)
	t.AddRow("n", info.N)
	t.AddRow("l", info.L)
	t.AddRow("r", info.R)
	t.AddRow("v", info.V)
	t.AddRow("seed", info.Seed)
	t.AddRow("kernel", info.KernelPath)
	t.AddRow("frames", len(ss))
	if len(ss) == 0 {
		return emit(t, tsv)
	}
	t.AddRow("first_step", ss[0].step)
	t.AddRow("last_step", ss[len(ss)-1].step)
	// Flooding metrics: milestones of the informed-count series.
	floodTime := -1
	maxNewly, maxNewlyStep := 0, -1
	milestones := []struct {
		frac  float64
		label string
		step  int
	}{
		{0.5, "t_50pct", -1}, {0.9, "t_90pct", -1}, {0.99, "t_99pct", -1},
	}
	hasFlood := false
	var meanDisp float64
	dispFrames := 0
	for _, st := range ss {
		if st.meanDisp > 0 {
			meanDisp += st.meanDisp
			dispFrames++
		}
		if st.informed < 0 {
			continue
		}
		hasFlood = true
		if st.newly > maxNewly {
			maxNewly, maxNewlyStep = st.newly, st.step
		}
		for i := range milestones {
			if milestones[i].step < 0 && float64(st.informed) >= milestones[i].frac*float64(info.N) {
				milestones[i].step = st.step
			}
		}
		if floodTime < 0 && st.informed == info.N {
			floodTime = st.step
		}
	}
	if hasFlood {
		t.AddRow("flooding_time", floodTime)
		for _, m := range milestones {
			t.AddRow(m.label, m.step)
		}
		t.AddRow("max_newly", maxNewly)
		t.AddRow("max_newly_step", maxNewlyStep)
	}
	if dispFrames > 0 {
		t.AddRow("mean_step_displacement", fmt.Sprintf("%.6f", meanDisp/float64(dispFrames)))
	}
	return emit(t, tsv)
}

func series(rp *manhattan.Replay, tsv bool) error {
	ss, err := scan(rp)
	if err != nil {
		return err
	}
	t := render.NewTable("per-step series", "step", "informed", "newly", "mean_disp")
	for _, st := range ss {
		informed := "-"
		newly := "-"
		if st.informed >= 0 {
			informed = fmt.Sprint(st.informed)
			newly = fmt.Sprint(st.newly)
		}
		t.AddRow(st.step, informed, newly, fmt.Sprintf("%.6f", st.meanDisp))
	}
	return emit(t, tsv)
}

func dump(rp *manhattan.Replay, step int, tsv bool) error {
	if step < 0 {
		_, last, ok := rp.Steps()
		if !ok {
			return fmt.Errorf("empty trace")
		}
		step = last
	}
	if err := rp.Seek(step); err != nil {
		return err
	}
	v := rp.View()
	t := render.NewTable(fmt.Sprintf("state at step %d", step), "id", "x", "y", "informed")
	for i := range v.X {
		informed := "-"
		if v.Informed != nil {
			informed = fmt.Sprint(v.Informed[i])
		}
		t.AddRow(i, fmt.Sprintf("%.9g", v.X[i]), fmt.Sprintf("%.9g", v.Y[i]), informed)
	}
	return emit(t, tsv)
}
