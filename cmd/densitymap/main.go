// Command densitymap regenerates the paper's Figure 1: the stationary
// spatial density over the square (gray gradient) and the destination
// distribution of an agent at (L/3, L/4) (the blue cross).
//
// Usage:
//
//	densitymap [-l 100] [-bins 40] [-mode theory|empirical] [-n 20000]
//	           [-steps 100] [-seed 1] [-pgm out.pgm]
//
// theory mode evaluates Theorem 1's closed form; empirical mode histograms
// a stationary simulation. Both print an ASCII heat map; -pgm additionally
// writes a grayscale image.
package main

import (
	"flag"
	"fmt"
	"os"

	manhattan "manhattanflood"
	"manhattanflood/internal/cells"
	"manhattanflood/internal/dist"
	"manhattanflood/internal/geom"
	"manhattanflood/internal/render"
	"manhattanflood/internal/stats"
)

func main() {
	l := flag.Float64("l", 100, "square side")
	bins := flag.Int("bins", 40, "heat map resolution")
	mode := flag.String("mode", "theory", "theory or empirical")
	n := flag.Int("n", 20000, "agents (empirical mode)")
	steps := flag.Int("steps", 100, "snapshots to accumulate (empirical mode)")
	seed := flag.Uint64("seed", 1, "random seed (empirical mode)")
	pgm := flag.String("pgm", "", "write a PGM image to this path")
	zones := flag.Bool("zones", false, "also print the Definition 4 Central-Zone/Suburb cell map")
	zoneN := flag.Int("zone-n", 20000, "agent count used for the zone map's Definition 4 threshold")
	zoneR := flag.Float64("zone-r", 0, "transmission radius for the zone map (0 = L/20)")
	flag.Parse()

	var field [][]float64
	switch *mode {
	case "theory":
		f, err := manhattan.DensityField(*l, *bins)
		if err != nil {
			fatal(err)
		}
		field = f
	case "empirical":
		sim, err := manhattan.New(manhattan.Config{N: *n, L: *l, R: 2, V: *l / 500, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		g, err := stats.NewGrid2D(*l, *bins)
		if err != nil {
			fatal(err)
		}
		// Accumulate the time-0 snapshot with the one-off accessor, then
		// stream the remaining steps through the observer seam: the grid
		// reads the live position columns with no per-step snapshot copy
		// (20k agents x hundreds of steps of avoided allocation).
		for _, p := range sim.Positions() {
			g.Add(p.X, p.Y)
		}
		sim.Attach(gridObserver{g})
		for s := 1; s < *steps; s++ {
			sim.Step()
		}
		sim.Detach()
		field = make([][]float64, *bins)
		for iy := 0; iy < *bins; iy++ {
			field[iy] = make([]float64, *bins)
			for ix := 0; ix < *bins; ix++ {
				field[iy][ix] = g.Density(ix, iy)
			}
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	fmt.Printf("Figure 1 — stationary spatial density (%s, L=%.4g, origin bottom-left):\n\n", *mode, *l)
	fmt.Println(render.ASCIIHeatmap(field))

	if *pgm != "" {
		f, err := os.Create(*pgm)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := render.WritePGM(f, field); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *pgm)
	}

	if *zones {
		r := *zoneR
		if r == 0 {
			r = *l / 20
		}
		part, err := cells.NewPartition(*l, r, *zoneN)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Definition 4 partition (n=%d, R=%.4g): %d central / %d suburb cells, S=%.4g\n\n",
			*zoneN, r, part.CentralCount(), part.SuburbCount(), part.SuburbDiameterS())
		fmt.Println(part.RenderZones())
	}

	// Destination cross at the paper's reference point (L/3, L/4).
	pos := geom.Pt(*l/3, *l/4)
	d, err := dist.NewDestination(*l, pos)
	if err != nil {
		fatal(err)
	}
	t := render.NewTable(fmt.Sprintf("destination law at (L/3, L/4) = (%.4g, %.4g) — Theorem 2", pos.X, pos.Y),
		"component", "probability mass")
	t.AddRow("cross total (paper: exactly 1/2)", d.CrossMass())
	for _, a := range []dist.Arm{dist.ArmSouth, dist.ArmWest, dist.ArmNorth, dist.ArmEast} {
		t.AddRow("arm "+a.String(), d.ArmProb(a))
	}
	for _, q := range []dist.Quadrant{dist.QuadrantSW, dist.QuadrantNE, dist.QuadrantNW, dist.QuadrantSE} {
		t.AddRow("quadrant "+q.String(), d.QuadrantMass(q))
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "densitymap:", err)
	os.Exit(1)
}

// gridObserver streams every observed step's live position columns into
// the histogram grid.
type gridObserver struct {
	g *stats.Grid2D
}

func (o gridObserver) ObserveStep(v manhattan.StepView) error {
	for i := range v.X {
		o.g.Add(v.X[i], v.Y[i])
	}
	return nil
}
