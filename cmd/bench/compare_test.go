package main

import (
	"io"
	"strings"
	"testing"
)

func report(entries map[string]float64) Report {
	var rep Report
	for name, ns := range entries {
		rep.Results = append(rep.Results, Result{Name: name, NsPerOp: ns})
	}
	return rep
}

// The compare gate must flag only benchmarks that regressed beyond the
// threshold, ignore entries missing from either side, and tolerate zero
// (unmeasured) values.
func TestCompareReports(t *testing.T) {
	old := report(map[string]float64{
		"a": 1000, // improves
		"b": 1000, // regresses 10% — inside the budget
		"c": 1000, // regresses 30% — flagged
		"d": 1000, // missing from the new run
		"z": 0,    // unmeasured baseline
	})
	cur := report(map[string]float64{
		"a": 500,
		"b": 1100,
		"c": 1300,
		"e": 777, // new benchmark, no baseline
		"z": 123,
	})
	var sb strings.Builder
	if got := compareReports(&sb, old, cur); got != 1 {
		t.Fatalf("regressions = %d, want 1\noutput:\n%s", got, sb.String())
	}
	out := sb.String()
	for _, line := range strings.Split(out, "\n") {
		flagged := strings.Contains(line, "REGRESSION")
		isC := strings.HasPrefix(line, "compare c")
		if flagged != isC {
			t.Fatalf("only benchmark c may be flagged:\n%s", out)
		}
	}
	if strings.Contains(out, "compare e") {
		t.Fatalf("benchmark without baseline must be skipped:\n%s", out)
	}
}

// Exactly at the threshold is not a regression (strictly-greater gate).
func TestCompareReportsThresholdInclusive(t *testing.T) {
	old := report(map[string]float64{"a": 1000})
	cur := report(map[string]float64{"a": 1000 * maxRegression})
	if got := compareReports(io.Discard, old, cur); got != 0 {
		t.Fatalf("ratio exactly %.2f must pass, got %d regressions", maxRegression, got)
	}
}

// loadReport must round-trip the committed trajectory file format.
func TestLoadReportMissing(t *testing.T) {
	if _, err := loadReport("/nonexistent/bench.json"); err == nil {
		t.Fatal("want error for missing compare file")
	}
}

// medianIndex must pick the middle sample (lower-middle for even counts)
// regardless of sample order, so the gate compares medians, not whichever
// run happened to land on a quiet or noisy scheduler slice.
func TestMedianIndex(t *testing.T) {
	cases := []struct {
		samples []float64
		want    int
	}{
		{[]float64{5}, 0},
		{[]float64{3, 1, 2}, 2},         // median 2 at index 2
		{[]float64{100, 10, 50, 70}, 2}, // even: lower-middle 50 at index 2
		{[]float64{9, 9, 9}, 1},         // ties: any middle; stable sort picks index 1
		{[]float64{1, 2, 3, 4, 5}, 2},
	}
	for _, tc := range cases {
		if got := medianIndex(tc.samples); got != tc.want {
			t.Errorf("medianIndex(%v) = %d, want %d", tc.samples, got, tc.want)
		}
	}
}

// runBenchMedian must report the median run's ns/op and record every
// sample; k = 1 must not record samples (single-run mode unchanged).
func TestRunBenchMedian(t *testing.T) {
	noop := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = i
		}
	}
	r := runBenchMedian(noop, 3)
	if len(r.NsSamples) != 3 {
		t.Fatalf("samples = %v, want 3 entries", r.NsSamples)
	}
	found := false
	for _, s := range r.NsSamples {
		if s == r.NsPerOp {
			found = true
		}
	}
	if !found {
		t.Fatalf("headline ns/op %v is not one of the samples %v", r.NsPerOp, r.NsSamples)
	}
	single := runBenchMedian(noop, 1)
	if single.NsSamples != nil {
		t.Fatalf("k=1 must not record samples, got %v", single.NsSamples)
	}
}
