// Command bench runs the simulator's hot-loop micro-benchmarks outside of
// `go test` and writes the results as a JSON trajectory file, so successive
// PRs can prove (or disprove) speedups against committed numbers.
//
// Usage:
//
//	bench [-out BENCH_7.json] [-compare OLD.json] [-k N] [-allocs] [-scale]
//
// Each entry reports ns/op, B/op and allocs/op as measured by
// testing.Benchmark. With -k > 1 every benchmark is measured k times and
// the median run is reported (all samples are recorded in ns_samples);
// -compare defaults k to 3, since the shared reference box drifts by
// double-digit percentages between sessions and a single sample would
// fail — or mask — the gate on noise. With -compare the run is diffed
// against a previously committed trajectory file: any benchmark present
// in both whose median ns/op regressed by more than 20% fails the run
// (non-zero exit), which is the CI regression gate (`make ci`). The
// committed BENCH_1.json carries the seed engine's numbers as
// baseline_ns_per_op; BENCH_2.json is the SoA-positions trajectory,
// BENCH_3.json the delta-index one, BENCH_4.json the
// dirty-driven-flooding one, BENCH_5.json the vectorized
// distance-kernel one, BENCH_6.json the SoA mobility-state trajectory
// with the fused advance→classify pass, and BENCH_7.json — the tiled-
// world trajectory — is what the gate compares against by default. The
// world_step_10k_soa / world_step_10k_aos pair records the same world
// stepped with and without the population capability, so the SoA win
// stays measurable after the baseline advances; mobility_advance_10k
// isolates the raw Population.StepRange kinematics without any index
// work; classify_100k isolates the batched position→bucket kernel
// (vectorized float→int32 conversion) that feeds the fused pass.
//
// # Scale series (-scale)
//
// -scale appends the scale_ benchmark family, flat versus tiled
// (sim.Params.Tiles) at a fixed worker count: 100k- and 1M-agent world
// steps (the tiled counting sort's locality story), and budgeted whole
// floods at 100k and 1M agents in the paper's sparse regime
// (L = 2*sqrt(n), ~4 agents per bucket), where the tiled sweep's
// whole-tile frontier skips beat the flat sweep's per-bucket skip scan
// — the t4/t8 pair records the tile-count curve. These run minutes, not
// seconds, so they are opt-in and excluded from the ordinary
// `make bench` loop; the -compare gate only diffs benchmarks present in
// both files, so trajectory files with and without the family stay
// comparable.
//
// # Hardware comparability
//
// The -compare gate diffs absolute ns/op, which is only meaningful on
// the machine class that recorded the baseline. Every trajectory file
// records the host's CPU model; when the current host's model differs
// from the baseline's, the gate is skipped with a clear message (exit 0)
// instead of failing spuriously — this is what keeps `make ci` honest on
// GitHub-hosted runners. Set BENCH_FORCE_COMPARE=1 to enforce the gate
// regardless, or BENCH_SKIP_COMPARE=1 to skip it even on matching
// hardware.
//
// # Allocation gate (-allocs)
//
// -allocs runs the hardware-independent allocation gate instead of the
// timing benchmarks: the steady-state hot loops — world step, plain and
// chained flood step, KGossip step, and the spatial index's delta update
// — must perform zero allocations per operation. Unlike the ns/op gate
// this holds on any machine, so it is the leg of the benchmark suite
// that CI runs on every push.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"manhattanflood/internal/core"
	"manhattanflood/internal/experiments"
	"manhattanflood/internal/geom"
	"manhattanflood/internal/kernel"
	"manhattanflood/internal/mobility"
	"manhattanflood/internal/sim"
	"manhattanflood/internal/spatialindex"
	"manhattanflood/internal/tracev2"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// NsSamples holds every run's ns/op when the benchmark was run more
	// than once (see -k); the headline NsPerOp above is their median run.
	NsSamples []float64 `json:"ns_samples,omitempty"`
	// BaselineNsPerOp is the seed engine's number for this benchmark on
	// the reference machine, when known (0 = benchmark introduced after
	// the baseline was taken).
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
}

// Report is the file layout of BENCH_N.json.
type Report struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel fingerprints the host that recorded the report; -compare
	// skips its absolute ns/op gate when models differ (files recorded
	// before the field existed compare as before). Empty when the
	// platform exposes no model string.
	CPUModel string `json:"cpu_model,omitempty"`
	// KernelPath records which distance-kernel implementation ran
	// ("avx2" or "generic") — numbers from different paths are not
	// comparable like-for-like.
	KernelPath string   `json:"kernel_path,omitempty"`
	Timestamp  string   `json:"timestamp"`
	Results    []Result `json:"results"`
}

// cpuModel reads the host CPU model name, best-effort: the first "model
// name" line of /proc/cpuinfo on Linux, empty elsewhere.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// baselines are the seed-engine numbers measured on the reference machine
// (Intel Xeon @ 2.70GHz, single core) with the same benchmark bodies,
// before the flat-CSR index and frontier flooding rewrite.
var baselines = map[string]float64{
	"world_step_10k":        728402,
	"flood_step_4k":         2176070,
	"flood_step_4k_chained": 5764699,
	"flood_step_20k":        11433482,
	"index_rebuild_10k":     42823,
	"index_neighbors_10k":   1145,
}

// maxRegression is the tolerated ns/op growth versus the -compare file.
const maxRegression = 1.20

func main() {
	out := flag.String("out", "BENCH_7.json", "output JSON path")
	compare := flag.String("compare", "", "previously committed BENCH_N.json to diff against; >20% ns/op regressions exit non-zero")
	k := flag.Int("k", 0, "runs per benchmark; the reported number is the median run (0 = auto: 3 with -compare, else 1)")
	allocs := flag.Bool("allocs", false, "run the hardware-independent zero-allocation gate instead of the timing benchmarks")
	scale := flag.Bool("scale", false, "append the scale_ family: 100k/1M-agent flat-vs-tiled steps (minutes, not seconds)")
	flag.Parse()
	if *allocs {
		if failures := runAllocGate(os.Stdout); failures > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d hot loop(s) allocate in the steady state\n", failures)
			os.Exit(1)
		}
		fmt.Println("allocs gate: ok (all hot loops are 0 allocs/op in the steady state)")
		return
	}
	if *k <= 0 {
		if *compare != "" {
			// The regression gate compares absolute ns/op on a shared,
			// noisy box; the median of three runs keeps one descheduled
			// run from failing (or masking) the 20% gate.
			*k = 3
		} else {
			*k = 1
		}
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"world_step_10k", benchWorldStep(10000)},
		{"world_step_10k_soa", benchWorldStepSoA(10000)},
		{"world_step_10k_aos", benchWorldStepAoS(10000)},
		{"mobility_advance_10k", benchMobilityAdvance(10000)},
		{"flood_step_4k", benchFloodStep(4000, false)},
		{"flood_step_4k_chained", benchFloodStep(4000, true)},
		{"flood_step_20k", benchFloodStep(20000, false)},
		{"kgossip_step_4k", benchKGossipStep(4000)},
		{"index_rebuild_10k", benchIndexRebuild(10000)},
		{"index_update_10k", benchIndexUpdate(10000)},
		{"index_neighbors_10k", benchIndexNeighbors(10000)},
		{"kernel_span_16", benchKernelSpan(16)},
		{"kernel_span_64", benchKernelSpan(64)},
		{"kernel_span_256", benchKernelSpan(256)},
		{"classify_100k", benchClassify(100000)},
		{"full_flood_2k", benchFullFlood(2000)},
		{"trace_write_100k", benchTraceWrite(100000)},
		{"world_step_10k_traced", benchWorldStepTraced(10000)},
		{"flood_step_4k_traced", benchFloodStepTraced(4000)},
		{"sweep_trials_e03", benchSweepTrials(true)},
		{"sweep_trials_e03_fresh", benchSweepTrials(false)},
	}
	if *scale {
		// Flat-vs-tiled at a fixed worker count: the flat entries are the
		// baselines the tiled entries are judged against. The flood family
		// (budgeted whole floods in the paper's sparse regime) is where
		// the tiled sweep's frontier skips win on any hardware; the
		// world-step family records the counting-sort locality story,
		// which only pays off when the working set exceeds cache.
		benches = append(benches, []struct {
			name string
			fn   func(b *testing.B)
		}{
			{"scale_world_step_100k_flat", benchWorldStepScale(100000, 0, scaleWorkers)},
			{"scale_world_step_100k_t4", benchWorldStepScale(100000, 4, scaleWorkers)},
			{"scale_world_step_1m_flat", benchWorldStepScale(1000000, 0, scaleWorkers)},
			{"scale_world_step_1m_t8", benchWorldStepScale(1000000, 8, scaleWorkers)},
			{"scale_flood_100k_flat", benchFloodScale(100000, 0, scaleWorkers)},
			{"scale_flood_100k_t4", benchFloodScale(100000, 4, scaleWorkers)},
			{"scale_flood_100k_t8", benchFloodScale(100000, 8, scaleWorkers)},
			{"scale_flood_1m_flat", benchFloodScale(1000000, 0, scaleWorkers)},
			{"scale_flood_1m_t8", benchFloodScale(1000000, 8, scaleWorkers)},
		}...)
	}

	rep := Report{
		Schema:     "manhattanflood/bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		KernelPath: kernel.Path(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, bench := range benches {
		r := runBenchMedian(bench.fn, *k)
		r.Name = bench.name
		r.BaselineNsPerOp = baselines[bench.name]
		rep.Results = append(rep.Results, r)
		speedup := ""
		if r.BaselineNsPerOp > 0 && r.NsPerOp > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs seed)", r.BaselineNsPerOp/r.NsPerOp)
		}
		fmt.Printf("%-24s %12.0f ns/op %8d B/op %6d allocs/op%s\n",
			bench.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, speedup)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *compare != "" {
		old, err := loadReport(*compare)
		if err != nil {
			fatal(err)
		}
		if reason, skip := compareSkipReason(old, rep); skip {
			fmt.Printf("compare vs %s: SKIPPED — %s\n", *compare, reason)
			fmt.Println("(absolute ns/op gates only hold on the baseline's machine class; " +
				"set BENCH_FORCE_COMPARE=1 to enforce anyway, or record a local baseline " +
				"with `make bench-json BENCH_BASELINE=/tmp/local.json` first)")
			return
		}
		regressions := compareReports(os.Stdout, old, rep)
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "bench: %d benchmark(s) regressed more than %.0f%% vs %s\n",
				regressions, (maxRegression-1)*100, *compare)
			os.Exit(1)
		}
		fmt.Printf("compare vs %s: ok (no hot-loop benchmark regressed more than %.0f%%)\n",
			*compare, (maxRegression-1)*100)
	}
}

// compareSkipReason decides whether the absolute ns/op gate is
// meaningful on this host: a baseline recorded on a different CPU model
// (or a different kernel path) would fail or pass on hardware, not on
// code. BENCH_SKIP_COMPARE=1 always skips; BENCH_FORCE_COMPARE=1 always
// enforces; otherwise the gate self-disables exactly when both reports
// carry fingerprints and they disagree.
func compareSkipReason(old, cur Report) (string, bool) {
	if os.Getenv("BENCH_FORCE_COMPARE") == "1" {
		return "", false
	}
	if os.Getenv("BENCH_SKIP_COMPARE") == "1" {
		return "BENCH_SKIP_COMPARE=1", true
	}
	if old.CPUModel != "" && cur.CPUModel != "" && old.CPUModel != cur.CPUModel {
		return fmt.Sprintf("baseline hardware %q != this host %q", old.CPUModel, cur.CPUModel), true
	}
	if old.KernelPath != "" && cur.KernelPath != "" && old.KernelPath != cur.KernelPath {
		return fmt.Sprintf("baseline kernel path %q != this build %q", old.KernelPath, cur.KernelPath), true
	}
	return "", false
}

// loadReport reads a committed trajectory file.
func loadReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("bench: reading compare file: %w", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return rep, nil
}

// compareReports prints the old-vs-new table for benchmarks present in
// both reports and returns how many regressed beyond maxRegression.
func compareReports(w io.Writer, old, cur Report) int {
	oldByName := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldByName[r.Name] = r
	}
	regressions := 0
	for _, r := range cur.Results {
		o, ok := oldByName[r.Name]
		if !ok || o.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / o.NsPerOp
		verdict := "ok"
		if ratio > maxRegression {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "compare %-24s %12.0f -> %12.0f ns/op  (%.2fx)  %s\n",
			r.Name, o.NsPerOp, r.NsPerOp, ratio, verdict)
	}
	return regressions
}

func runBench(fn func(b *testing.B)) Result {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return Result{
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

// runBenchMedian measures fn k times and reports the run with the median
// ns/op (all samples recorded in NsSamples). Session noise on the shared
// reference box swings single samples by double-digit percentages; the
// median keeps one descheduled run from deciding the regression gate in
// either direction.
func runBenchMedian(fn func(b *testing.B), k int) Result {
	if k <= 1 {
		return runBench(fn)
	}
	runs := make([]Result, k)
	samples := make([]float64, k)
	for i := range runs {
		runs[i] = runBench(fn)
		samples[i] = runs[i].NsPerOp
	}
	med := medianIndex(samples)
	r := runs[med]
	r.NsSamples = samples
	return r
}

// medianIndex returns the index of the median sample (the lower of the two
// middle samples for even counts, so the reported run is always one that
// actually happened).
func medianIndex(samples []float64) int {
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return samples[order[a]] < samples[order[b]] })
	return order[(len(order)-1)/2]
}

func benchWorldStep(n int) func(b *testing.B) {
	return func(b *testing.B) {
		w, err := sim.NewWorld(sim.Params{N: n, L: 100, R: 4, V: 0.3, Seed: 1}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
	}
}

// benchWorldStepSoA is world_step_10k with the population path asserted:
// since the SoA mobility layer became the default engine the two entries
// measure the same loop, but this one fails loudly if the default world
// ever silently falls back to AoS stepping.
func benchWorldStepSoA(n int) func(b *testing.B) {
	return func(b *testing.B) {
		w, err := sim.NewWorld(sim.Params{N: n, L: 100, R: 4, V: 0.3, Seed: 1}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if w.Population() == nil {
			b.Fatal("default world should step a population")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
	}
}

// hideBulk strips a model down to the bare Model interface (embedded
// interfaces promote only the interface's own methods), hiding
// NewPopulation so the world takes the AoS fallback: per-agent interface
// calls and a separate classify sweep inside the index.
type hideBulk struct{ mobility.Model }

// benchWorldStepAoS is the array-of-structs ablation of world_step_10k:
// identical trajectories, old data layout. The gap to world_step_10k_soa
// is the SoA + fused-classify win on the current code.
func benchWorldStepAoS(n int) func(b *testing.B) {
	return func(b *testing.B) {
		factory := func(cfg mobility.Config) (mobility.Model, error) {
			m, err := mobility.NewMRWP(cfg)
			if err != nil {
				return nil, err
			}
			return hideBulk{m}, nil
		}
		w, err := sim.NewWorld(sim.Params{N: n, L: 100, R: 4, V: 0.3, Seed: 1}, factory)
		if err != nil {
			b.Fatal(err)
		}
		if w.Population() != nil {
			b.Fatal("ablation world must not step a population")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
	}
}

// benchMobilityAdvance measures the raw SoA mobility advance — n MRWP
// agents through Population.StepRange with no index or classify work:
// the pure kinematics cost the world step builds on.
func benchMobilityAdvance(n int) func(b *testing.B) {
	return func(b *testing.B) {
		model, err := mobility.NewMRWP(mobility.Config{L: 100, V: 0.3})
		if err != nil {
			b.Fatal(err)
		}
		pop := mobility.BulkStepper(model).NewPopulation(n)
		pop.Bind(mobility.View{X: make([]float64, n), Y: make([]float64, n)})
		for i := 0; i < n; i++ {
			pop.InitAgent(i, rand.New(rand.NewPCG(1, uint64(i))))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pop.StepRange(0, n)
		}
	}
}

func benchFloodStep(n int, chaining bool) func(b *testing.B) {
	return func(b *testing.B) {
		l := math.Sqrt(float64(n))
		newFlood := func(seed uint64) *core.Flooding {
			w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 4, V: 0.3, Seed: seed}, nil)
			if err != nil {
				b.Fatal(err)
			}
			var opts []core.FloodOption
			if chaining {
				opts = append(opts, core.WithinStepChaining(true))
			}
			f, err := core.NewFlooding(w, w.NearestAgent(geom.Pt(l/2, l/2)), opts...)
			if err != nil {
				b.Fatal(err)
			}
			return f
		}
		seed := uint64(1)
		f := newFlood(seed)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f.Done() {
				b.StopTimer()
				seed++
				f = newFlood(seed)
				b.StartTimer()
			}
			f.Step()
		}
	}
}

// scaleWorkers is the fixed goroutine budget of every scale_ entry, so
// flat-vs-tiled differences measure the tiled data layout and the
// whole-tile frontier skips, not a different degree of parallelism. It
// is 1 because the committed baselines come from a single-core box,
// where extra workers only add scheduling noise; on a multi-core box,
// raise it and re-record (the per-tile passes parallelize).
const scaleWorkers = 1

// benchWorldStepScale measures a world step at population scale, flat
// (tiles = 0) or tiled. V/R = 0.075 keeps the index on the counting-sort
// path — the regime where the flat sort's scattered writes fall out of
// cache and the tiled two-level sort's per-tile working set stays
// resident. (On the current reference box the entire working set fits
// in the 260MB L3 and these entries tie; they are in the series to
// catch regressions and to show the crossover on smaller-cache
// hardware.)
func benchWorldStepScale(n, tiles, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		l := math.Sqrt(float64(n))
		w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 4, V: 0.3, Seed: 1,
			Workers: workers, Tiles: tiles}, nil)
		if err != nil {
			b.Fatal(err)
		}
		w.Step() // warm every scratch buffer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
	}
}

// scaleFloodBudget caps one flood op of the scale series. At L = 2*sqrt(n)
// the frontier needs ~L/(2R)*sqrt(2) rounds to the corners plus a
// straggler tail, so 512 rounds covers essentially the whole flood at
// both populations while bounding the op against mobility-limited tails.
const scaleFloodBudget = 512

// benchFloodScale measures one whole flood (budgeted at scaleFloodBudget
// rounds) at population scale in the paper's sparse regime: L = 2*sqrt(n)
// (~4 agents per bucket — near the connectivity threshold, where flooding
// time is actually interesting) and slow mobility V = 0.1. This is the
// regime where the tiled sweep's whole-tile skips pay: early rounds skip
// the tiles ahead of the frontier wholesale, late rounds skip the
// saturated interior, while the flat sweep's fixed O(buckets) pass —
// with n/4 buckets, comparable to the O(n) mobility terms — runs every
// round. The world re-seeds outside the timer, so the op is the flood
// itself (sweeps + world steps), not the setup. Every op replays the
// same seed: per-seed flooding variance at this density is larger than
// the tiled-vs-flat effect, so flat and tiled configs must flood the
// exact same trajectory to be comparable.
func benchFloodScale(n, tiles, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		l := 2 * math.Sqrt(float64(n))
		w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 4, V: 0.1, Seed: 1,
			Workers: workers, Tiles: tiles}, nil)
		if err != nil {
			b.Fatal(err)
		}
		f, err := core.NewFlooding(w, w.NearestAgent(geom.Pt(l/2, l/2)))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w.Reset(1)
			if err := f.Reset(f.Source()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for s := 0; s < scaleFloodBudget && !f.Done(); s++ {
				f.Step()
			}
		}
	}
}

// benchClassify measures the batched position→bucket classify
// (kernel.Buckets behind Index.ClassifyInto): the vectorized float→int32
// conversion that feeds the world's fused advance→classify pass.
func benchClassify(n int) func(b *testing.B) {
	return func(b *testing.B) {
		l := math.Sqrt(float64(n))
		rng := rand.New(rand.NewPCG(uint64(n), 0xc1a55))
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = rng.Float64()*l, rng.Float64()*l
		}
		ix, err := spatialindex.New(l, 4)
		if err != nil {
			b.Fatal(err)
		}
		cells := make([]int32, n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.ClassifyInto(cells, xs, ys)
		}
	}
}

func benchIndexRebuild(n int) func(b *testing.B) {
	return func(b *testing.B) {
		const l, r = 100.0, 4.0
		pts := benchPoints(n, l, 1)
		ix, err := spatialindex.New(l, r)
		if err != nil {
			b.Fatal(err)
		}
		ix.Rebuild(pts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Rebuild(pts)
		}
	}
}

// benchIndexUpdate measures the delta-update path against real mobility
// kinematics: two consecutive position frames of an MRWP world at the
// E03-default velocity (v=0.1, R=4 — about a 2.5% bucket-mover fraction
// per step) are replayed through Index.Update in ping-pong order, so every
// transition is exactly one mobility step's displacement and the frames
// stay cache-resident, as the simulator's single live coordinate array
// does. This is the workload World.Step runs on the slow-agent sweeps
// (E03/E04/E11); compare with index_rebuild_10k for the full counting
// sort it replaces there.
func benchIndexUpdate(n int) func(b *testing.B) {
	return func(b *testing.B) {
		const l, r = 100.0, 4.0
		w, err := sim.NewWorld(sim.Params{N: n, L: l, R: r, V: 0.1, Seed: 7}, nil)
		if err != nil {
			b.Fatal(err)
		}
		ax := append([]float64(nil), w.X()...)
		ay := append([]float64(nil), w.Y()...)
		w.Step()
		bx := append([]float64(nil), w.X()...)
		by := append([]float64(nil), w.Y()...)
		ix, err := spatialindex.New(l, r)
		if err != nil {
			b.Fatal(err)
		}
		ix.RebuildXY(ax, ay)
		ix.Update(bx, by, nil)
		ix.Update(ax, ay, nil) // warm the delta scratch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%2 == 0 {
				ix.Update(bx, by, nil)
			} else {
				ix.Update(ax, ay, nil)
			}
		}
	}
}

func benchIndexNeighbors(n int) func(b *testing.B) {
	return func(b *testing.B) {
		const l, r = 100.0, 4.0
		pts := benchPoints(n, l, 1)
		ix, err := spatialindex.New(l, r)
		if err != nil {
			b.Fatal(err)
		}
		ix.Rebuild(pts)
		dst := make([]int, 0, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := i % n
			dst = ix.Neighbors(pts[q], q, dst[:0])
		}
	}
}

func benchFullFlood(n int) func(b *testing.B) {
	return func(b *testing.B) {
		l := math.Sqrt(float64(n))
		for i := 0; i < b.N; i++ {
			w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 5, V: 0.4, Seed: uint64(i) + 1}, nil)
			if err != nil {
				b.Fatal(err)
			}
			f, err := core.NewFlooding(w, w.NearestAgent(geom.Pt(l/2, l/2)))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.Run(100000); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSweepTrials measures Monte-Carlo trial throughput at the E03 quick
// point (n=800, L=sqrt(n), the sweep's largest radius R=16, v=0.1, central
// source, 8 trials per op) through the production floodTrials fan-out.
// pooled=true is the shipped path (one world+flood per worker, Reset
// between trials); pooled=false constructs fresh pairs per trial — the
// pair of entries records the throughput gain of pooling.
func benchSweepTrials(pooled bool) func(b *testing.B) {
	return func(b *testing.B) {
		const trials = 8
		for i := 0; i < b.N; i++ {
			completed, err := experiments.SweepTrials(800, trials, 20000, 16, uint64(i)+1, pooled)
			if err != nil {
				b.Fatal(err)
			}
			if completed == 0 {
				b.Fatal("no trial completed")
			}
		}
	}
}

// benchKGossipStep measures one push-gossip round (fan-out 2) in the
// steady state — the duplicate-filter bitmap discipline is what keeps it
// allocation-free.
func benchKGossipStep(n int) func(b *testing.B) {
	return func(b *testing.B) {
		l := math.Sqrt(float64(n))
		newGossip := func(seed uint64) *core.KGossip {
			w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 4, V: 0.3, Seed: seed}, nil)
			if err != nil {
				b.Fatal(err)
			}
			g, err := core.NewKGossip(w, w.NearestAgent(geom.Pt(l/2, l/2)), 2, seed)
			if err != nil {
				b.Fatal(err)
			}
			return g
		}
		seed := uint64(1)
		g := newGossip(seed)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g.Done() {
				b.StopTimer()
				seed++
				g = newGossip(seed)
				b.StartTimer()
			}
			g.Step()
		}
	}
}

// benchKernelSpan measures the raw batched radius kernel on a span the
// size of a typical CSR row, on whichever implementation the host
// selected (see the report's kernel_path).
func benchKernelSpan(n int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewPCG(uint64(n), 0xca5e))
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i], ys[i] = rng.Float64()*20, rng.Float64()*20
		}
		dst := make([]uint64, kernel.Words(n))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernel.Mask(dst, xs, ys, 10, 10, 4)
		}
	}
}

// newTraceWriteOp builds a steady-state trace WriteStep op at population
// scale: two consecutive world frames are replayed in ping-pong order (as
// in benchIndexUpdate), so every op encodes one real mobility step's worth
// of position deltas, plus a representative flooding block (a one-third
// informed bitmap era with a few hundred newly-informed ids per step).
// The io.Discard sink isolates encoding cost from the filesystem.
func newTraceWriteOp(n int) (op func() error, err error) {
	l := math.Sqrt(float64(n))
	w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 4, V: 0.3, Seed: 1}, nil)
	if err != nil {
		return nil, err
	}
	ax := append([]float64(nil), w.X()...)
	ay := append([]float64(nil), w.Y()...)
	w.Step()
	bx := append([]float64(nil), w.X()...)
	by := append([]float64(nil), w.Y()...)
	informed := make([]bool, n)
	for i := 0; i < n/3; i++ {
		informed[i*3] = true
	}
	newly := make([]int32, 256)
	for i := range newly {
		newly[i] = int32(i * (n / len(newly)))
	}
	wr, err := tracev2.NewWriter(io.Discard, tracev2.RunInfo{
		N: n, L: l, R: 4, V: 0.3, Seed: 1, Model: "mrwp",
	})
	if err != nil {
		return nil, err
	}
	step := 0
	return func() error {
		step++
		if step%2 == 0 {
			return wr.WriteStep(step, ax, ay, informed, newly)
		}
		return wr.WriteStep(step, bx, by, informed, newly)
	}, nil
}

// benchTraceWrite measures the columnar trace writer's per-step cost in
// isolation at population scale — the budget the <10% recording-overhead
// target is judged against (compare with scale_world_step_100k_flat /
// scale_flood_100k_flat for the uninstrumented step).
func benchTraceWrite(n int) func(b *testing.B) {
	return func(b *testing.B) {
		op, err := newTraceWriteOp(n)
		if err != nil {
			b.Fatal(err)
		}
		if err := op(); err != nil { // warm: keyframe + buffer growth
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := op(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchWorldStepTraced is world_step_10k with a trace recorder attached
// through the production step hook: the gap to world_step_10k is the
// whole-stack recording overhead on the world-only path.
func benchWorldStepTraced(n int) func(b *testing.B) {
	return func(b *testing.B) {
		w, err := sim.NewWorld(sim.Params{N: n, L: 100, R: 4, V: 0.3, Seed: 1}, nil)
		if err != nil {
			b.Fatal(err)
		}
		wr, err := tracev2.NewWriter(io.Discard, tracev2.RunInfo{
			N: n, L: 100, R: 4, V: 0.3, Seed: 1, Model: "mrwp",
		})
		if err != nil {
			b.Fatal(err)
		}
		var hookErr error
		w.SetStepHook(func() {
			if err := wr.WriteStep(w.Time(), w.X(), w.Y(), nil, nil); err != nil {
				hookErr = err
			}
		})
		w.Step() // warm: keyframe + buffer growth
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
		b.StopTimer()
		if hookErr != nil {
			b.Fatal(hookErr)
		}
	}
}

// benchFloodStepTraced is flood_step_4k plus the per-step recording work
// the run loop performs with an observer attached (Step, then one
// WriteStep with the informed column and the step's fresh ids): the gap
// to flood_step_4k is the recording overhead on the flooding path.
func benchFloodStepTraced(n int) func(b *testing.B) {
	return func(b *testing.B) {
		l := math.Sqrt(float64(n))
		// One writer across flood restarts: a restart's step discontinuity
		// forces a keyframe (same cost as the steady-state keyframe
		// cadence) without re-growing the assembly buffer inside the
		// measured region.
		wr, err := tracev2.NewWriter(io.Discard, tracev2.RunInfo{
			N: n, L: l, R: 4, V: 0.3, Seed: 1, Model: "mrwp",
		})
		if err != nil {
			b.Fatal(err)
		}
		newFlood := func(seed uint64) (*core.Flooding, *sim.World) {
			w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 4, V: 0.3, Seed: seed}, nil)
			if err != nil {
				b.Fatal(err)
			}
			f, err := core.NewFlooding(w, w.NearestAgent(geom.Pt(l/2, l/2)))
			if err != nil {
				b.Fatal(err)
			}
			return f, w
		}
		seed := uint64(1)
		f, w := newFlood(seed)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f.Done() {
				b.StopTimer()
				seed++
				f, w = newFlood(seed)
				b.StartTimer()
			}
			f.Step()
			if err := wr.WriteStep(w.Time(), w.X(), w.Y(), f.Informed(), f.LastStepNewlyInformed()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// allocCheck is one hot loop of the -allocs gate: warm the scratch
// buffers, then require zero allocations per op in the steady state.
type allocCheck struct {
	name string
	// setup builds the subject and returns (warm, op): warm is run
	// uncounted to let every reusable buffer reach capacity, op is the
	// measured operation.
	setup func() (func(), func(), error)
	// warmups is how many uncounted runs precede the measurement.
	warmups int
}

// runAllocGate measures every hot loop with testing.AllocsPerRun and
// reports loops that allocate; the measurement is exact (allocation
// counts, not timings), so the gate passes or fails identically on any
// hardware.
func runAllocGate(w io.Writer) int {
	checks := []allocCheck{
		{name: "world_step_10k", warmups: 30, setup: func() (func(), func(), error) {
			world, err := sim.NewWorld(sim.Params{N: 10000, L: 100, R: 4, V: 0.3, Seed: 1}, nil)
			if err != nil {
				return nil, nil, err
			}
			return world.Step, world.Step, nil
		}},
		{name: "world_step_10k_t4", warmups: 30, setup: func() (func(), func(), error) {
			world, err := sim.NewWorld(sim.Params{N: 10000, L: 100, R: 4, V: 0.3, Seed: 1, Tiles: 4}, nil)
			if err != nil {
				return nil, nil, err
			}
			return world.Step, world.Step, nil
		}},
		{name: "flood_step_4k", warmups: 40, setup: func() (func(), func(), error) {
			return newAllocFlood(4000, false, 0)
		}},
		{name: "flood_step_4k_chained", warmups: 40, setup: func() (func(), func(), error) {
			return newAllocFlood(4000, true, 0)
		}},
		{name: "flood_step_4k_t4", warmups: 40, setup: func() (func(), func(), error) {
			return newAllocFlood(4000, false, 4)
		}},
		{name: "kgossip_step_4k", warmups: 40, setup: func() (func(), func(), error) {
			l := math.Sqrt(4000.0)
			world, err := sim.NewWorld(sim.Params{N: 4000, L: l, R: 4, V: 0.3, Seed: 1}, nil)
			if err != nil {
				return nil, nil, err
			}
			g, err := core.NewKGossip(world, world.NearestAgent(geom.Pt(l/2, l/2)), 2, 99)
			if err != nil {
				return nil, nil, err
			}
			op := func() {
				if !g.Done() {
					g.Step()
				}
			}
			return op, op, nil
		}},
		{name: "trace_write_100k", warmups: 3, setup: func() (func(), func(), error) {
			op, err := newTraceWriteOp(100000)
			if err != nil {
				return nil, nil, err
			}
			wrapped := func() {
				if err := op(); err != nil {
					panic(err)
				}
			}
			return wrapped, wrapped, nil
		}},
		{name: "index_update_10k", warmups: 8, setup: func() (func(), func(), error) {
			const l, r = 100.0, 4.0
			world, err := sim.NewWorld(sim.Params{N: 10000, L: l, R: r, V: 0.1, Seed: 7}, nil)
			if err != nil {
				return nil, nil, err
			}
			ax := append([]float64(nil), world.X()...)
			ay := append([]float64(nil), world.Y()...)
			world.Step()
			bx := append([]float64(nil), world.X()...)
			by := append([]float64(nil), world.Y()...)
			ix, err := spatialindex.New(l, r)
			if err != nil {
				return nil, nil, err
			}
			ix.RebuildXY(ax, ay)
			flip := false
			op := func() {
				if flip {
					ix.Update(ax, ay, nil)
				} else {
					ix.Update(bx, by, nil)
				}
				flip = !flip
			}
			return op, op, nil
		}},
	}
	failures := 0
	for _, c := range checks {
		warm, op, err := c.setup()
		if err != nil {
			fmt.Fprintf(w, "allocs %-24s ERROR: %v\n", c.name, err)
			failures++
			continue
		}
		for i := 0; i < c.warmups; i++ {
			warm()
		}
		avg := testing.AllocsPerRun(20, op)
		verdict := "ok"
		if avg > 0 {
			verdict = "ALLOCATES"
			failures++
		}
		fmt.Fprintf(w, "allocs %-24s %8.2f allocs/op  %s\n", c.name, avg, verdict)
	}
	return failures
}

// newAllocFlood builds a steady-state flood step op for the alloc gate.
func newAllocFlood(n int, chained bool, tiles int) (func(), func(), error) {
	l := math.Sqrt(float64(n))
	world, err := sim.NewWorld(sim.Params{N: n, L: l, R: 4, V: 0.3, Seed: 1, Tiles: tiles}, nil)
	if err != nil {
		return nil, nil, err
	}
	var opts []core.FloodOption
	if chained {
		opts = append(opts, core.WithinStepChaining(true))
	}
	f, err := core.NewFlooding(world, world.NearestAgent(geom.Pt(l/2, l/2)), opts...)
	if err != nil {
		return nil, nil, err
	}
	op := func() {
		if !f.Done() {
			f.Step()
		}
	}
	return op, op, nil
}

func benchPoints(n int, l float64, seed uint64) []geom.Point {
	rng := rand.New(rand.NewPCG(seed, 0xbe7c4))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*l, rng.Float64()*l)
	}
	return pts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
