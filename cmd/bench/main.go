// Command bench runs the simulator's hot-loop micro-benchmarks outside of
// `go test` and writes the results as a JSON trajectory file, so successive
// PRs can prove (or disprove) speedups against committed numbers.
//
// Usage:
//
//	bench [-out BENCH_1.json]
//
// Each entry reports ns/op, B/op and allocs/op as measured by
// testing.Benchmark. The committed BENCH_1.json also carries the seed
// engine's numbers (bucket-of-slices index, O(n)-rescan flooding) as
// baseline_ns_per_op for the benchmarks that existed before the CSR +
// frontier rewrite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"
	"time"

	"manhattanflood/internal/core"
	"manhattanflood/internal/geom"
	"manhattanflood/internal/sim"
	"manhattanflood/internal/spatialindex"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// BaselineNsPerOp is the seed engine's number for this benchmark on
	// the reference machine, when known (0 = benchmark introduced after
	// the baseline was taken).
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
}

// Report is the file layout of BENCH_1.json.
type Report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Timestamp  string   `json:"timestamp"`
	Results    []Result `json:"results"`
}

// baselines are the seed-engine numbers measured on the reference machine
// (Intel Xeon @ 2.70GHz, single core) with the same benchmark bodies,
// before the flat-CSR index and frontier flooding rewrite.
var baselines = map[string]float64{
	"world_step_10k":        728402,
	"flood_step_4k":         2176070,
	"flood_step_4k_chained": 5764699,
	"flood_step_20k":        11433482,
	"index_rebuild_10k":     42823,
	"index_neighbors_10k":   1145,
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"world_step_10k", benchWorldStep(10000)},
		{"flood_step_4k", benchFloodStep(4000, false)},
		{"flood_step_4k_chained", benchFloodStep(4000, true)},
		{"flood_step_20k", benchFloodStep(20000, false)},
		{"index_rebuild_10k", benchIndexRebuild(10000)},
		{"index_neighbors_10k", benchIndexNeighbors(10000)},
		{"full_flood_2k", benchFullFlood(2000)},
	}

	rep := Report{
		Schema:     "manhattanflood/bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, bench := range benches {
		r := runBench(bench.fn)
		r.Name = bench.name
		r.BaselineNsPerOp = baselines[bench.name]
		rep.Results = append(rep.Results, r)
		speedup := ""
		if r.BaselineNsPerOp > 0 && r.NsPerOp > 0 {
			speedup = fmt.Sprintf("  (%.2fx vs seed)", r.BaselineNsPerOp/r.NsPerOp)
		}
		fmt.Printf("%-24s %12.0f ns/op %8d B/op %6d allocs/op%s\n",
			bench.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, speedup)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func runBench(fn func(b *testing.B)) Result {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return Result{
		Iterations:  res.N,
		NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
}

func benchWorldStep(n int) func(b *testing.B) {
	return func(b *testing.B) {
		w, err := sim.NewWorld(sim.Params{N: n, L: 100, R: 4, V: 0.3, Seed: 1}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Step()
		}
	}
}

func benchFloodStep(n int, chaining bool) func(b *testing.B) {
	return func(b *testing.B) {
		l := math.Sqrt(float64(n))
		newFlood := func(seed uint64) *core.Flooding {
			w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 4, V: 0.3, Seed: seed}, nil)
			if err != nil {
				b.Fatal(err)
			}
			var opts []core.FloodOption
			if chaining {
				opts = append(opts, core.WithinStepChaining(true))
			}
			f, err := core.NewFlooding(w, w.NearestAgent(geom.Pt(l/2, l/2)), opts...)
			if err != nil {
				b.Fatal(err)
			}
			return f
		}
		seed := uint64(1)
		f := newFlood(seed)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f.Done() {
				b.StopTimer()
				seed++
				f = newFlood(seed)
				b.StartTimer()
			}
			f.Step()
		}
	}
}

func benchIndexRebuild(n int) func(b *testing.B) {
	return func(b *testing.B) {
		const l, r = 100.0, 4.0
		pts := benchPoints(n, l, 1)
		ix, err := spatialindex.New(l, r)
		if err != nil {
			b.Fatal(err)
		}
		ix.Rebuild(pts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Rebuild(pts)
		}
	}
}

func benchIndexNeighbors(n int) func(b *testing.B) {
	return func(b *testing.B) {
		const l, r = 100.0, 4.0
		pts := benchPoints(n, l, 1)
		ix, err := spatialindex.New(l, r)
		if err != nil {
			b.Fatal(err)
		}
		ix.Rebuild(pts)
		dst := make([]int, 0, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := i % n
			dst = ix.Neighbors(pts[q], q, dst[:0])
		}
	}
}

func benchFullFlood(n int) func(b *testing.B) {
	return func(b *testing.B) {
		l := math.Sqrt(float64(n))
		for i := 0; i < b.N; i++ {
			w, err := sim.NewWorld(sim.Params{N: n, L: l, R: 5, V: 0.4, Seed: uint64(i) + 1}, nil)
			if err != nil {
				b.Fatal(err)
			}
			f, err := core.NewFlooding(w, w.NearestAgent(geom.Pt(l/2, l/2)))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.Run(100000); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchPoints(n int, l float64, seed uint64) []geom.Point {
	rng := rand.New(rand.NewPCG(seed, 0xbe7c4))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*l, rng.Float64()*l)
	}
	return pts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
