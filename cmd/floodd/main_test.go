package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"manhattanflood/internal/experiments"
	"manhattanflood/internal/service"
)

// buildFloodd compiles the real daemon once per test run.
func buildFloodd(t *testing.T) string {
	t.Helper()
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal semantics required")
	}
	if testing.Short() {
		t.Skip("builds and runs the floodd binary")
	}
	bin := filepath.Join(t.TempDir(), "floodd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running floodd instance under test.
type daemon struct {
	cmd    *exec.Cmd
	url    string
	stderr *lockedBuffer
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startDaemon launches floodd on an OS-assigned port and waits for its
// "listening on" line to learn the address.
func startDaemon(t *testing.T, bin string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	buf := &lockedBuffer{}
	cmd.Stderr = buf
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(buf.String()); m != nil {
			return &daemon{cmd: cmd, url: "http://" + m[1], stderr: buf}
		}
		if cmd.ProcessState != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("floodd never reported its address; stderr:\n%s", buf.String())
	return nil
}

// e2eSpec is the ~2s workload the sweep e2e test also uses: long enough
// for a kill to land mid-run, short enough for the suite.
func e2eSpec() service.JobSpec {
	return service.JobSpec{
		Param: "r", Values: []float64{2, 2.5, 3}, N: 30000, R: 5, V: 0.3,
		Trials: 8, MaxSteps: 60000, Seed: 3, Source: "center",
	}
}

func submitJob(t *testing.T, d *daemon, spec service.JobSpec) string {
	t.Helper()
	blob, _ := json.Marshal(spec)
	resp, err := http.Post(d.url+"/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("submit decode: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	return v.ID
}

func getJob(t *testing.T, d *daemon, id string) (service.JobView, bool) {
	t.Helper()
	resp, err := http.Get(d.url + "/v1/jobs/" + id)
	if err != nil {
		return service.JobView{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobView{}, false
	}
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return service.JobView{}, false
	}
	return v, true
}

// TestKillNineThenRestartResumesByteIdentical is the crash-only
// acceptance test: SIGKILL the daemon mid-sweep, restart it against the
// same state directory, and the finished job's TSV must be byte-identical
// to the in-process sweep runner's rendering of the same spec. The
// assertion holds wherever the kill lands — a journal that was already
// complete simply replays.
func TestKillNineThenRestartResumesByteIdentical(t *testing.T) {
	bin := buildFloodd(t)
	state := filepath.Join(t.TempDir(), "floodd-state")
	spec := e2eSpec()

	d1 := startDaemon(t, bin, "-state", state, "-workers", "2")
	id := submitJob(t, d1, spec)

	// Wait for durable progress (at least one journaled cell), then pull
	// the plug with no warning whatsoever.
	deadline := time.Now().Add(60 * time.Second)
	var seen service.JobView
	for {
		if v, ok := getJob(t, d1, id); ok && v.CellsDone > 0 {
			seen = v
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cells journaled; stderr:\n%s", d1.stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err := d1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	d1.cmd.Wait()
	killedMidRun := seen.CellsDone < seen.CellsTotal

	// Restart against the same state directory: the job must be there,
	// with at least the progress we saw, and run to completion.
	d2 := startDaemon(t, bin, "-state", state)
	v, ok := getJob(t, d2, id)
	if !ok {
		t.Fatalf("job %s not re-admitted after restart; stderr:\n%s", id, d2.stderr.String())
	}
	if v.CellsDone < seen.CellsDone {
		t.Fatalf("journaled progress lost across kill: saw %d, restarted with %d", seen.CellsDone, v.CellsDone)
	}
	for {
		v, ok = getJob(t, d2, id)
		if ok && v.State == service.StateCompleted {
			break
		}
		if ok && (v.State == service.StateFailed || v.State == service.StateCanceled) {
			t.Fatalf("resumed job ended %s: %s", v.State, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never completed: %+v\nstderr:\n%s", v, d2.stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err := http.Get(d2.url + "/v1/jobs/" + id + "/result?format=tsv")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}

	res, err := experiments.RunSweep(experiments.Config{Workers: 2}, experiments.SweepSpec{
		Param: spec.Param, Values: spec.Values, N: spec.N, R: spec.R, V: spec.V,
		Trials: spec.Trials, MaxSteps: spec.MaxSteps, Seed: spec.Seed, Source: spec.Source,
	})
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}
	var want bytes.Buffer
	if err := res.WriteTSV(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("resumed service TSV differs from in-process sweep (killed mid-run: %v)\ngot:\n%s\nwant:\n%s",
			killedMidRun, got, want.Bytes())
	}
	if !killedMidRun {
		t.Logf("note: kill landed after the sweep completed; resume replayed a full journal")
	}
}

// TestSIGTERMDrain: an idle daemon drains to exit 0; one holding
// unfinished work stops admitting, finishes in-flight trials, exits 1,
// and points at restart-resume. The restarted daemon re-admits the job.
func TestSIGTERMDrain(t *testing.T) {
	bin := buildFloodd(t)

	// Idle drain: exit 0.
	idle := startDaemon(t, bin)
	idle.cmd.Process.Signal(syscall.SIGTERM)
	if err := idle.cmd.Wait(); err != nil {
		t.Fatalf("idle drain exited nonzero: %v\nstderr:\n%s", err, idle.stderr.String())
	}

	// Busy drain: exit 1, journals flushed, work resumable.
	state := filepath.Join(t.TempDir(), "state")
	busy := startDaemon(t, bin, "-state", state, "-workers", "2")
	id := submitJob(t, busy, e2eSpec())
	deadline := time.Now().Add(60 * time.Second)
	for {
		if v, ok := getJob(t, busy, id); ok && v.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	busy.cmd.Process.Signal(syscall.SIGTERM)
	err := busy.cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("busy drain: err=%v, want exit code 1\nstderr:\n%s", err, busy.stderr.String())
	}
	if !strings.Contains(busy.stderr.String(), "resume") {
		t.Errorf("busy drain stderr carries no resume hint:\n%s", busy.stderr.String())
	}

	d2 := startDaemon(t, bin, "-state", state)
	v, ok := getJob(t, d2, id)
	if !ok {
		t.Fatalf("job %s not re-admitted after drain+restart", id)
	}
	if v.State != service.StateQueued && v.State != service.StateRunning && v.State != service.StateCompleted {
		t.Fatalf("restarted job in state %s (%s)", v.State, v.Error)
	}
}
