// Command floodd serves parameter sweeps over HTTP. Clients POST
// declarative sweep specs to /v1/jobs and poll for status and TSV/JSON
// results; see internal/service for the API and the robustness contract.
//
// The daemon is crash-only: with -state set, every accepted job and every
// completed (point, trial) cell is fsynced before it is acknowledged, so
// a SIGKILLed server restarted against the same state directory resumes
// every accepted job and produces byte-identical results. -retain bounds
// how long finished jobs linger: past the window the garbage collector
// drops a terminal job together with its spec record and journal, so the
// job table stays bounded and a restart does not resurrect collected
// jobs (resubmitting the same spec then recomputes it). SIGTERM or
// SIGINT triggers a graceful drain instead: admission stops (healthz and
// submits turn 503), in-flight trials finish and are journaled, and the
// process exits 1 if unfinished jobs remain (they resume next start),
// 0 if the queue was empty.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"manhattanflood/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "listen address")
		stateDir       = flag.String("state", "", "state directory for durable jobs and checkpoint journals (empty: in-memory only)")
		workers        = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS)")
		maxQueued      = flag.Int("max-queued", 64, "admission bound: max queued+running jobs before submits get 429 (negative: unbounded)")
		defaultTimeout = flag.Duration("default-timeout", 0, "per-job deadline applied when the spec sets none (0 = none)")
		stallTimeout   = flag.Duration("stall-timeout", 5*time.Minute, "watchdog threshold for a single wedged trial (0 = off)")
		drainTimeout   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight trials on SIGTERM")
		retain         = flag.Duration("retain", 0, "how long finished jobs (and their journals) are kept before GC; also the result-cache window (0 = forever)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "floodd: ", log.LstdFlags|log.Lmsgprefix)

	sched, err := service.New(service.Config{
		Workers:        *workers,
		MaxQueuedJobs:  *maxQueued,
		DefaultTimeout: *defaultTimeout,
		StallTimeout:   *stallTimeout,
		StateDir:       *stateDir,
		Retain:         *retain,
		Logf:           func(format string, args ...any) { logger.Printf(format, args...) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "floodd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "floodd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: service.NewServer(sched)}
	logger.Printf("listening on %s (state=%q workers=%d)", ln.Addr(), *stateDir, *workers)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case got := <-sig:
		logger.Printf("received %s, draining", got)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "floodd: serve: %v\n", err)
		return 1
	}

	// Graceful drain: stop admitting and finish in-flight trials first
	// (so their cells reach the journals), then close the listener. The
	// HTTP server stays up during the drain so status polls keep working
	// and new submits get an honest 503.
	remaining := sched.Drain(*drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	if remaining > 0 {
		logger.Printf("drained with %d unfinished jobs; restart with the same -state to resume", remaining)
		return 1
	}
	logger.Printf("drained clean")
	return 0
}
