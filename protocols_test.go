package manhattan

import "testing"

func TestFloodTree(t *testing.T) {
	s, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.FloodTree(FloodOptions{Source: SourceCenter, MaxSteps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("tree flood incomplete: %+v", res)
	}
	if res.MaxDepth <= 0 || res.MeanDepth <= 0 {
		t.Errorf("depths = %d / %v", res.MaxDepth, res.MeanDepth)
	}
	if res.MeanDepth > float64(res.MaxDepth) {
		t.Error("mean depth above max depth")
	}
	if res.CourierFraction < 0 || res.CourierFraction > 1 {
		t.Errorf("courier fraction = %v", res.CourierFraction)
	}
	if res.Time < res.MaxDepth {
		t.Errorf("flooding time %d below tree depth %d", res.Time, res.MaxDepth)
	}
}

func TestProtocolStrings(t *testing.T) {
	if Flooding.String() != "flooding" || Parsimonious.String() != "parsimonious" ||
		Gossip.String() != "gossip" {
		t.Error("protocol strings wrong")
	}
	if Protocol(9).String() != "Protocol(9)" {
		t.Error("unknown protocol string wrong")
	}
}

func TestRunProtocolFlooding(t *testing.T) {
	s, _ := New(validConfig())
	res, err := s.RunProtocol(ProtocolOptions{Protocol: Flooding, MaxSteps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Informed != 800 {
		t.Errorf("result = %+v", res)
	}
}

func TestRunProtocolParsimonious(t *testing.T) {
	s, _ := New(validConfig())
	res, err := s.RunProtocol(ProtocolOptions{Protocol: Parsimonious, P: 0.3, MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("parsimonious incomplete: %+v", res)
	}
	if res.Transmissions <= 0 {
		t.Error("no transmissions counted")
	}
	// Default P applies when zero.
	s2, _ := New(validConfig())
	if _, err := s2.RunProtocol(ProtocolOptions{Protocol: Parsimonious, MaxSteps: 100000}); err != nil {
		t.Errorf("default P: %v", err)
	}
}

func TestRunProtocolGossip(t *testing.T) {
	s, _ := New(validConfig())
	res, err := s.RunProtocol(ProtocolOptions{Protocol: Gossip, K: 2, MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("gossip incomplete: %+v", res)
	}
}

func TestRunProtocolErrors(t *testing.T) {
	s, _ := New(validConfig())
	if _, err := s.RunProtocol(ProtocolOptions{Protocol: Protocol(9)}); err == nil {
		t.Error("want unknown-protocol error")
	}
	if _, err := s.RunProtocol(ProtocolOptions{Protocol: Parsimonious, P: 2}); err == nil {
		t.Error("want probability error")
	}
	if _, err := s.RunProtocol(ProtocolOptions{Protocol: Gossip, K: -1}); err == nil {
		t.Error("want fan-out error")
	}
}

func TestProtocolsComparable(t *testing.T) {
	// Flooding is at least as fast as any restricted variant on identically
	// seeded worlds.
	cfg := validConfig()
	s1, _ := New(cfg)
	s2, _ := New(cfg)
	flood, err := s1.RunProtocol(ProtocolOptions{Protocol: Flooding, MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	gossip, err := s2.RunProtocol(ProtocolOptions{Protocol: Gossip, K: 1, MaxSteps: 300000})
	if err != nil {
		t.Fatal(err)
	}
	if gossip.Completed && flood.Completed && gossip.Time < flood.Time {
		t.Errorf("k=1 gossip (%d) beat flooding (%d)", gossip.Time, flood.Time)
	}
}
